"""Benchmark regression ledger: ``python -m repro bench {record,compare}``.

The plan benchmarks (``benchmarks/bench_plan.py``) emit ``BENCH_*.json``
reports — one-shot snapshots that answer "is this build fast enough"
but not "is it slower than last week".  This module keeps the history:
``record`` flattens a report into named numeric *series* and appends
them to an append-only JSONL ledger (``benchmarks/history.jsonl`` by
default); ``compare`` checks a fresh report against the ledger's
baselines and fails (nonzero exit) on regression, printing a markdown
delta table suitable for a CI job summary.

Series names encode the instance, so differently-sized runs never mix::

    treecode/n5000/speedup        cluster/n8000/plan_mb
    treecode/n5000/plan_matvec_s  cluster/n8000/direct_sample_min_headroom
    bem/p10092/speedup            treecode/n5000/max_abs_diff

Baselines are the median of the last :data:`BASELINE_WINDOW` ledger
entries carrying the series, which rides out one-off CI noise without
letting a slow drift redefine "normal" too quickly.

Tolerance rules are matched on the series *metric* (the last path
component):

* ``speedup`` — higher is better; fail when the new value drops more
  than 50% below baseline (CI machines are noisy; a real plan-path
  regression collapses the ratio entirely).
* ``plan_mb`` — lower is better; fail when memory grows >25% over
  baseline (plan layouts are deterministic, so growth means a real
  structural change).
* ``max_abs_diff`` — absolute ceiling ``1e-11``, history-independent
  (the plan/fallback agreement contract).
* ``*_headroom`` — absolute floor ``0`` (a Theorem-1 ledger violation
  is a correctness bug, not a perf regression).
* ``supervision_overhead`` — absolute ceiling ``0.05``,
  history-independent: supervised execution (heartbeats + watchdog,
  ``benchmarks/bench_supervisor.py``) may cost at most 5% over the
  unsupervised baseline on a clean run.
* ``variable_order_speedup`` — absolute floor ``2.0``,
  history-independent: the tol-compiled variable-order cluster plan
  must stay >= 2x faster than the minimal uniform-degree plan with the
  same Theorem-1 guarantee.
* ``variable_order_mem_ratio`` — absolute ceiling ``1.0``: the
  variable-order plan may not outgrow the uniform plan it replaces.
* ``m2l_rotation_speedup`` — absolute floor ``2.0``,
  history-independent: the rotation-accelerated O((p+1)^3) M2L must
  stay >= 2x faster than the dense O((p+1)^4) path at the same degree
  on the ``p >= 8`` rows of ``benchmarks/bench_kernels.py``'s BENCH_6
  report (lower degrees report the ratio informationally as
  ``rotation_speedup``).
* ``m2l_backend_rel_diff`` — absolute ceiling ``1e-12``: the
  complex128 dense/rotation agreement contract.
* ``batched_matvec_throughput`` — absolute floor ``2.0``,
  history-independent: executing a ``k = 8`` right-hand-side batch
  through one compiled plan (``benchmarks/bench_batch.py``, BENCH_7)
  must deliver >= 2x the per-vector throughput of eight sequential
  single-vector applications — the BLAS-3 batching contract.
* ``plan_cache_warmstart_speedup`` — absolute floor ``10.0``,
  history-independent: restoring a compiled plan from the
  content-addressed store (``repro.perf.store``) as a zero-copy mmap
  must be >= 10x faster than recompiling it from scratch.
* ``*_s`` (timings) and everything else — informational: reported in
  the table, never gating (wall times on shared CI are too noisy to
  fail on directly; ``speedup`` is the noise-immune ratio).

With ``compare``, the delta table is also appended to the file named
by ``$GITHUB_STEP_SUMMARY`` when that variable is set, so CI runs
surface it on the workflow summary page without extra plumbing.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

__all__ = [
    "LEDGER_VERSION",
    "BASELINE_WINDOW",
    "extract_series",
    "load_history",
    "record",
    "compare",
    "markdown_table",
    "bench_main",
]

LEDGER_VERSION = 1
BASELINE_WINDOW = 5  #: history entries per series in the median baseline
DEFAULT_HISTORY = os.path.join("benchmarks", "history.jsonl")

#: metric name -> (rule, parameter); anything unmatched is informational
_RULES: dict[str, tuple[str, float]] = {
    "speedup": ("min_ratio", 0.5),  # fail below 50% of baseline
    "plan_mb": ("max_ratio", 1.25),  # fail above 125% of baseline
    "max_abs_diff": ("abs_max", 1e-11),
    "headroom": ("abs_min", 0.0),
    "supervision_overhead": ("abs_max", 0.05),
    # variable-order vs minimal uniform-degree plan, same Theorem-1
    # guarantee: the speedup floor and no-memory-growth ceiling are the
    # acceptance criteria themselves, history-independent
    "variable_order_speedup": ("abs_min", 2.0),
    "variable_order_mem_ratio": ("abs_max", 1.0),
    # rotation-based M2L vs dense at identical degree (BENCH_6): the
    # O((p+1)^3) pipeline must keep paying for itself at p >= 8, and
    # the two backends must agree to 1e-12 in complex128
    "m2l_rotation_speedup": ("abs_min", 2.0),
    "m2l_backend_rel_diff": ("abs_max", 1e-12),
    # multi-RHS batching and the persistent plan store (BENCH_7): one
    # batched pass must beat sequential single-vector applications by
    # 2x per vector, and a warm mmap load must beat a cold compile 10x
    "batched_matvec_throughput": ("abs_min", 2.0),
    "plan_cache_warmstart_speedup": ("abs_min", 10.0),
}

#: per-row fields worth tracking as series (present or not per bench)
_ROW_METRICS = (
    "speedup",
    "plan_mb",
    "compile_s",
    "plan_matvec_s",
    "fallback_matvec_s",
    "max_abs_diff",
    "direct_sample_min_headroom",
    "pc_min_headroom",
    "supervision_overhead",
    "unsupervised_s",
    "supervised_s",
    "variable_order_speedup",
    "variable_order_mem_ratio",
    "variable_order_ledger_headroom",
    "fixed_matvec_s",
    "variable_matvec_s",
    "m2l_rotation_speedup",
    "rotation_speedup",
    "m2l_backend_rel_diff",
    "dense_s",
    "rotation_s",
    "batched_matvec_throughput",
    "single_matvec_s",
    "batched_s",
    "plan_cache_warmstart_speedup",
    "cold_compile_s",
    "warm_load_s",
    "plan_file_mb",
)


def _rule_for(series: str) -> tuple[str, float] | None:
    metric = series.rsplit("/", 1)[-1]
    if metric in _RULES:
        return _RULES[metric]
    if metric.endswith("_headroom"):
        return _RULES["headroom"]
    return None


def _row_series(prefix: str, row: dict, out: dict) -> None:
    for metric in _ROW_METRICS:
        val = row.get(metric)
        if isinstance(val, (int, float)) and not isinstance(val, bool):
            out[f"{prefix}/{metric}"] = float(val)


def extract_series(report: dict) -> dict:
    """Flatten one ``BENCH_*.json`` report into ``{series: value}``.

    Handles the BENCH_3 shape (``treecode`` rows + optional ``bem``
    block), the BENCH_4 shape (``treecode_cluster`` rows + optional
    ``variable_order`` block), the BENCH_5 shape (``supervisor``
    block), the BENCH_6 shape (``m2l_backends`` rows) and the BENCH_7
    shape (``batch`` rows + ``plan_cache`` block); unknown
    report layouts yield an empty dict rather than an error, so the
    ledger tolerates future benches until series are defined for them.
    """
    series: dict = {}
    for row in report.get("treecode") or []:
        _row_series(f"treecode/n{row.get('n')}", row, series)
    bem = report.get("bem")
    if bem:
        _row_series(f"bem/p{bem.get('panels')}", bem, series)
    for row in report.get("treecode_cluster") or []:
        _row_series(f"cluster/n{row.get('n')}", row, series)
    vo = report.get("variable_order")
    if vo:
        _row_series(f"variable_order/n{vo.get('n')}", vo, series)
    sup = report.get("supervisor")
    if sup:
        _row_series(f"supervisor/n{sup.get('n')}", sup, series)
    for row in report.get("m2l_backends") or []:
        _row_series(f"m2l/p{row.get('p')}", row, series)
    for row in report.get("batch") or []:
        _row_series(f"batch/n{row.get('n')}k{row.get('k')}", row, series)
    pc = report.get("plan_cache")
    if pc:
        _row_series(f"plan_cache/n{pc.get('n')}", pc, series)
    proj = report.get("projected_mb_50k")
    if isinstance(proj, (int, float)):
        series["cluster/projected_mb_50k"] = float(proj)
    return series


def load_history(path: str) -> list[dict]:
    """All ledger entries, oldest first (missing file -> empty)."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def record(report_paths: list[str], history_path: str) -> list[dict]:
    """Append one ledger entry per report; returns the new entries."""
    entries = []
    directory = os.path.dirname(os.path.abspath(history_path))
    os.makedirs(directory, exist_ok=True)
    with open(history_path, "a") as fh:
        for path in report_paths:
            with open(path) as rf:
                report = json.load(rf)
            entry = {
                "v": LEDGER_VERSION,
                "recorded": time.time(),
                "source": os.path.basename(path),
                "bench": report.get("bench"),
                "mode": report.get("mode"),
                "series": extract_series(report),
            }
            fh.write(json.dumps(entry) + "\n")
            entries.append(entry)
    return entries


def _baseline(history: list[dict], series: str) -> float | None:
    vals = [
        e["series"][series]
        for e in history
        if series in e.get("series", {})
    ]
    if not vals:
        return None
    return float(statistics.median(vals[-BASELINE_WINDOW:]))


def compare(report_paths: list[str], history_path: str) -> tuple[list[dict], bool]:
    """Judge fresh reports against the ledger.

    Returns ``(rows, ok)``: one row per series with its baseline, new
    value, delta and status (``ok`` / ``REGRESSION`` / ``new`` /
    ``info``), and ``ok=False`` iff any series regressed.
    """
    history = load_history(history_path)
    rows: list[dict] = []
    ok = True
    for path in report_paths:
        with open(path) as rf:
            report = json.load(rf)
        for series, value in sorted(extract_series(report).items()):
            base = _baseline(history, series)
            rule = _rule_for(series)
            delta = None if base in (None, 0.0) else (value - base) / abs(base)
            status = "info"
            if rule is not None:
                kind, param = rule
                if kind == "abs_max":
                    status = "REGRESSION" if value > param else "ok"
                elif kind == "abs_min":
                    status = "REGRESSION" if value < param else "ok"
                elif base is None:
                    status = "new"
                elif kind == "min_ratio":
                    status = "REGRESSION" if value < base * param else "ok"
                elif kind == "max_ratio":
                    status = "REGRESSION" if value > base * param else "ok"
            if status == "REGRESSION":
                ok = False
            rows.append(
                {
                    "series": series,
                    "baseline": base,
                    "value": value,
                    "delta": delta,
                    "status": status,
                }
            )
    return rows, ok


def _fmt(val: float | None) -> str:
    if val is None:
        return "—"
    if val == 0:
        return "0"
    mag = abs(val)
    if mag >= 1e4 or mag < 1e-3:
        return f"{val:.3e}"
    return f"{val:.4g}"


def markdown_table(rows: list[dict]) -> str:
    """Render compare rows as a markdown delta table."""
    lines = [
        "| series | baseline | new | delta | status |",
        "|---|---:|---:|---:|---|",
    ]
    for r in rows:
        delta = "—" if r["delta"] is None else f"{r['delta'] * 100:+.1f}%"
        mark = "**REGRESSION**" if r["status"] == "REGRESSION" else r["status"]
        lines.append(
            f"| {r['series']} | {_fmt(r['baseline'])} | {_fmt(r['value'])} "
            f"| {delta} | {mark} |"
        )
    return "\n".join(lines)


def bench_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark regression ledger over BENCH_*.json reports.",
    )
    parser.add_argument(
        "action",
        choices=["record", "compare"],
        help="'record' appends reports to the ledger; 'compare' judges "
        "them against it (nonzero exit on regression)",
    )
    parser.add_argument(
        "reports", nargs="+", metavar="REPORT", help="BENCH_*.json report files"
    )
    parser.add_argument(
        "--history",
        default=DEFAULT_HISTORY,
        metavar="FILE",
        help=f"ledger location (default: {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--markdown",
        metavar="FILE",
        default=None,
        help="with 'compare': also write the delta table to FILE",
    )
    parser.add_argument(
        "--record",
        action="store_true",
        help="with 'compare': append the reports to the ledger when no "
        "series regressed (green CI runs extend the baseline)",
    )
    args = parser.parse_args(argv)

    for path in args.reports:
        if not os.path.exists(path):
            parser.error(f"report not found: {path}")

    if args.action == "record":
        entries = record(args.reports, args.history)
        n_series = sum(len(e["series"]) for e in entries)
        print(
            f"recorded {len(entries)} report(s), {n_series} series "
            f"-> {args.history}"
        )
        return 0

    rows, ok = compare(args.reports, args.history)
    table = markdown_table(rows)
    print(table)
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(table + "\n")
        print(f"delta table written to {args.markdown}")
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        # CI surfaces this file on the workflow summary page; append
        # (several compare steps may share one job)
        with open(step_summary, "a") as fh:
            fh.write("### bench compare\n\n" + table + "\n\n")
    if not ok:
        bad = [r["series"] for r in rows if r["status"] == "REGRESSION"]
        print(f"REGRESSION in: {', '.join(bad)}", file=sys.stderr)
        return 1
    if args.record:
        record(args.reports, args.history)
        print(f"ledger extended -> {args.history}")
    print("bench compare OK")
    return 0
