"""Spatial data structures: Morton/Hilbert keys and the adaptive octree."""

from .dualtree import BoxPairs, box_mac, dual_traverse
from .hilbert import hilbert_key, hilbert_order
from .morton import morton_key
from .octree import Octree, build_octree

__all__ = [
    "morton_key",
    "hilbert_key",
    "hilbert_order",
    "Octree",
    "build_octree",
    "BoxPairs",
    "box_mac",
    "dual_traverse",
]
