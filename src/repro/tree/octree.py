"""Adaptive octree over Morton-sorted particles.

The tree is stored as a structure of arrays.  Particles are sorted by
Morton key once; every node then owns a *contiguous slice*
``[start, end)`` of the sorted particle arrays, so per-node reductions
and near-field interactions are plain vectorized slices.

Construction is breadth-first: a node's children are found by
``searchsorted`` on the key array (each child of a depth-``d`` node is
the sub-slice whose keys share a ``3(d+1)``-bit prefix), which makes
children of a node — and all nodes of a level — contiguous in the node
arrays.

Per-node aggregates maintained for the treecode:

``abs_charge``
    ``A = sum_i |q_i|`` — the quantity the paper's error bounds (Thm 1/2)
    and the adaptive degree selection (Thm 3) are driven by.
``net_charge``
    ``sum_i q_i``.
``center_exp``
    Expansion center.  Default is the |q|-weighted centroid (the paper's
    "center of mass of the cluster"; weighting by ``|q|`` keeps it
    defined for mixed-sign charge systems), optionally the geometric box
    center.
``radius``
    Exact max distance from ``center_exp`` to any particle of the node —
    the radius ``a`` of the enclosing sphere in Theorem 1.  Using the
    exact radius instead of the half-diagonal tightens both the MAC and
    the error bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .morton import MAX_DEPTH, key_range_of_node, morton_key

__all__ = ["Octree", "build_octree"]


@dataclass
class Octree:
    """Adaptive octree with per-node charge aggregates.

    Use :func:`build_octree` to construct.  All node attributes are
    NumPy arrays indexed by node id; node 0 is the root.  Particle
    arrays (``points``, ``charges``) are stored in Morton order;
    ``perm`` maps sorted position -> original index.
    """

    # particle data (Morton-sorted)
    points: np.ndarray
    charges: np.ndarray
    perm: np.ndarray

    # domain
    domain_lo: np.ndarray
    domain_hi: np.ndarray

    # node structure
    level: np.ndarray
    parent: np.ndarray
    first_child: np.ndarray
    n_children: np.ndarray
    start: np.ndarray
    end: np.ndarray
    center_geom: np.ndarray
    half_size: np.ndarray

    # aggregates
    center_exp: np.ndarray
    radius: np.ndarray
    abs_charge: np.ndarray
    net_charge: np.ndarray

    # configuration
    leaf_size: int
    expansion_center: str

    # level structure: levels[d] is the contiguous node-id range (lo, hi)
    level_ranges: list = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return len(self.level)

    @property
    def n_particles(self) -> int:
        return len(self.charges)

    @property
    def height(self) -> int:
        """Number of levels (root level counts as 1)."""
        return len(self.level_ranges)

    def is_leaf(self, i) -> np.ndarray:
        return self.n_children[i] == 0

    def children(self, i: int) -> np.ndarray:
        """Node ids of the children of node ``i``."""
        fc = self.first_child[i]
        return np.arange(fc, fc + self.n_children[i])

    def particles_of(self, i: int) -> slice:
        """Slice of the Morton-sorted particle arrays owned by node ``i``."""
        return slice(int(self.start[i]), int(self.end[i]))

    def nodes_at_level(self, d: int) -> np.ndarray:
        lo, hi = self.level_ranges[d]
        return np.arange(lo, hi)

    def leaf_ids(self) -> np.ndarray:
        return np.nonzero(self.n_children == 0)[0]

    def validate(self) -> None:
        """Check structural invariants (used by the test-suite and for
        debugging user-supplied inputs); raises AssertionError."""
        assert self.start[0] == 0 and self.end[0] == self.n_particles
        for i in range(self.n_nodes):
            if self.n_children[i] > 0:
                ch = self.children(i)
                assert np.all(self.parent[ch] == i)
                assert self.start[ch[0]] == self.start[i]
                assert self.end[ch[-1]] == self.end[i]
                assert np.all(self.end[ch[:-1]] == self.start[ch[1:]])
                assert np.all(self.level[ch] == self.level[i] + 1)
        # every particle in exactly one leaf
        leaves = self.leaf_ids()
        counts = (self.end[leaves] - self.start[leaves]).sum()
        assert counts == self.n_particles


def build_octree(
    points: np.ndarray,
    charges: np.ndarray,
    leaf_size: int = 16,
    expansion_center: str = "abs_com",
    max_depth: int = MAX_DEPTH,
) -> Octree:
    """Build an adaptive octree.

    Parameters
    ----------
    points:
        ``(n, 3)`` particle positions.
    charges:
        ``(n,)`` charges (or quadrature weights for BEM).
    leaf_size:
        Maximum particles per leaf.  The paper notes leaves of 32-64
        particles are common for cache performance; the treecode's
        near-field cost grows with ``leaf_size`` while the number of
        multipole evaluations shrinks.
    expansion_center:
        ``"abs_com"`` — |q|-weighted centroid (default, the paper's
        center of mass); ``"box"`` — geometric box center.
    max_depth:
        Hard depth cap (duplicates or near-duplicates stop splitting
        there, so leaves can exceed ``leaf_size`` in pathological data).

    Returns
    -------
    :class:`Octree`
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    charges = np.ascontiguousarray(charges, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (n, 3), got {points.shape}")
    if charges.shape != (points.shape[0],):
        raise ValueError(
            f"charges must have shape ({points.shape[0]},), got {charges.shape}"
        )
    if points.shape[0] == 0:
        raise ValueError("cannot build a tree over zero particles")
    if not np.all(np.isfinite(points)):
        raise ValueError("points contain NaN or infinity")
    if not np.all(np.isfinite(charges)):
        raise ValueError("charges contain NaN or infinity")
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
    if expansion_center not in ("abs_com", "box"):
        raise ValueError(f"unknown expansion_center {expansion_center!r}")
    if not 1 <= max_depth <= MAX_DEPTH:
        raise ValueError(f"max_depth must be in [1, {MAX_DEPTH}]")

    # Cubic root box (slightly padded so boundary points quantize inside).
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    edge = float((hi - lo).max())
    if edge <= 0:
        edge = 1.0  # all points coincide
    pad = edge * 1e-9
    center0 = (lo + hi) / 2.0
    edge = edge * (1 + 2e-9) + 2 * pad
    domain_lo = center0 - edge / 2.0
    domain_hi = center0 + edge / 2.0

    keys = morton_key(points, domain_lo, domain_hi)
    perm = np.argsort(keys, kind="stable")
    keys = keys[perm]
    pts = points[perm]
    q = charges[perm]

    # --- BFS construction -------------------------------------------------
    level_l: list[int] = [0]
    parent_l: list[int] = [-1]
    first_child_l: list[int] = [-1]
    n_children_l: list[int] = [0]
    start_l: list[int] = [0]
    end_l: list[int] = [len(q)]
    center_l: list[np.ndarray] = [center0]
    half_l: list[float] = [edge / 2.0]
    prefix_l: list[int] = [0]

    level_ranges: list[tuple[int, int]] = [(0, 1)]
    frontier = [0]
    depth = 0
    while frontier:
        next_frontier: list[int] = []
        next_lo = len(level_l)
        for node in frontier:
            s, e = start_l[node], end_l[node]
            if e - s <= leaf_size or depth >= max_depth:
                continue  # leaf
            prefix = prefix_l[node]
            # Octant boundaries inside [s, e) via one searchsorted call.
            bounds = [s]
            for oct_ in range(1, 8):
                k_lo, _ = key_range_of_node(prefix * 8 + oct_, depth + 1)
                bounds.append(int(np.searchsorted(keys[s:e], k_lo)) + s)
            bounds.append(e)
            fc = -1
            nch = 0
            c = np.asarray(center_l[node])
            h = half_l[node] / 2.0
            for oct_ in range(8):
                cs, ce = bounds[oct_], bounds[oct_ + 1]
                if ce <= cs:
                    continue
                child = len(level_l)
                if fc < 0:
                    fc = child
                nch += 1
                dx = h if (oct_ & 4) else -h
                dy = h if (oct_ & 2) else -h
                dz = h if (oct_ & 1) else -h
                level_l.append(depth + 1)
                parent_l.append(node)
                first_child_l.append(-1)
                n_children_l.append(0)
                start_l.append(cs)
                end_l.append(ce)
                center_l.append(c + np.array([dx, dy, dz]))
                half_l.append(h)
                prefix_l.append(prefix * 8 + oct_)
                next_frontier.append(child)
            first_child_l[node] = fc
            n_children_l[node] = nch
        if next_frontier:
            level_ranges.append((next_lo, len(level_l)))
        frontier = next_frontier
        depth += 1

    n_nodes = len(level_l)
    level = np.asarray(level_l, dtype=np.int32)
    start = np.asarray(start_l, dtype=np.int64)
    end = np.asarray(end_l, dtype=np.int64)
    center_geom = np.asarray(center_l, dtype=np.float64)
    half_size = np.asarray(half_l, dtype=np.float64)

    # --- aggregates --------------------------------------------------------
    absq = np.abs(q)
    cs_abs = np.concatenate([[0.0], np.cumsum(absq)])
    cs_net = np.concatenate([[0.0], np.cumsum(q)])
    cs_wpos = np.concatenate(
        [np.zeros((1, 3)), np.cumsum(absq[:, None] * pts, axis=0)], axis=0
    )
    abs_charge = cs_abs[end] - cs_abs[start]
    net_charge = cs_net[end] - cs_net[start]
    if expansion_center == "abs_com":
        wsum = cs_wpos[end] - cs_wpos[start]
        safe = np.maximum(abs_charge, 1e-300)[:, None]
        center_exp = np.where(abs_charge[:, None] > 0, wsum / safe, center_geom)
    else:
        center_exp = center_geom.copy()

    # Exact enclosing radius about the expansion center.  Total work is
    # O(n * height): every particle appears in one slice per level.
    radius = np.empty(n_nodes, dtype=np.float64)
    for i in range(n_nodes):
        s, e = start[i], end[i]
        d = pts[s:e] - center_exp[i]
        radius[i] = np.sqrt(np.einsum("ij,ij->i", d, d).max())

    return Octree(
        points=pts,
        charges=q,
        perm=perm,
        domain_lo=domain_lo,
        domain_hi=domain_hi,
        level=level,
        parent=np.asarray(parent_l, dtype=np.int64),
        first_child=np.asarray(first_child_l, dtype=np.int64),
        n_children=np.asarray(n_children_l, dtype=np.int32),
        start=start,
        end=end,
        center_geom=center_geom,
        half_size=half_size,
        center_exp=center_exp,
        radius=radius,
        abs_charge=abs_charge,
        net_charge=net_charge,
        leaf_size=leaf_size,
        expansion_center=expansion_center,
        level_ranges=level_ranges,
    )
