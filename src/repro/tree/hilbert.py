"""3-D Peano-Hilbert keys (Skilling's transpose algorithm, vectorized).

The paper's parallel formulation sorts particles in a
"proximity-preserving order (a Peano-Hilbert ordering)" before
aggregating blocks of ``w`` consecutive particles into work units for
the threads.  Hilbert order has strictly better locality than Morton
order (no long jumps between octants), which is what makes the
w-aggregation produce well-balanced, spatially-compact blocks.

This module implements John Skilling's compact conversion between axis
coordinates and the "transpose" representation of the Hilbert index
(Skilling, *Programming the Hilbert curve*, AIP Conf. Proc. 707, 2004),
vectorized over NumPy arrays, plus packing of the transpose form into a
single ``uint64`` key.
"""

from __future__ import annotations

import numpy as np

from .morton import interleave3, deinterleave3, quantize, MAX_DEPTH

__all__ = [
    "axes_to_transpose",
    "transpose_to_axes",
    "hilbert_key_from_grid",
    "grid_from_hilbert_key",
    "hilbert_key",
    "hilbert_order",
]


def axes_to_transpose(grid: np.ndarray, bits: int) -> np.ndarray:
    """Convert grid coordinates to the Hilbert "transpose" representation.

    Parameters
    ----------
    grid:
        ``(n, 3)`` unsigned integer coordinates, each in ``[0, 2**bits)``.
    bits:
        Bits per dimension.

    Returns
    -------
    ``(n, 3)`` array: the Hilbert index of each point, distributed
    bitwise across three words (bit ``b`` of the index lives in word
    ``b % 3`` at position ``b // 3``).
    """
    x = np.array(grid, dtype=np.uint64, copy=True)
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError(f"grid must have shape (n, 3), got {x.shape}")
    n = 3
    m = np.uint64(1) << np.uint64(bits - 1)

    # Inverse undo of the Hilbert transform.
    q = m
    one = np.uint64(1)
    while q > one:
        p = q - one
        for i in range(n):
            hi = (x[:, i] & q) != 0
            # Where the bit is set: invert low bits of x[:,0].
            x[hi, 0] ^= p
            # Where it is clear: exchange low bits of x[:,0] and x[:,i].
            t = (x[:, 0] ^ x[:, i]) & p
            t[hi] = 0
            x[:, 0] ^= t
            x[:, i] ^= t
        q >>= one

    # Gray encode.
    for i in range(1, n):
        x[:, i] ^= x[:, i - 1]
    t = np.zeros(x.shape[0], dtype=np.uint64)
    q = m
    while q > one:
        nz = (x[:, n - 1] & q) != 0
        t[nz] ^= q - one
        q >>= one
    for i in range(n):
        x[:, i] ^= t
    return x


def transpose_to_axes(transpose: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`axes_to_transpose`."""
    x = np.array(transpose, dtype=np.uint64, copy=True)
    if x.ndim != 2 or x.shape[1] != 3:
        raise ValueError(f"transpose must have shape (n, 3), got {x.shape}")
    n = 3
    one = np.uint64(1)
    m = np.uint64(1) << np.uint64(bits)

    # Gray decode by halving.
    t = x[:, n - 1] >> one
    for i in range(n - 1, 0, -1):
        x[:, i] ^= x[:, i - 1]
    x[:, 0] ^= t

    # Undo excess work.
    q = np.uint64(2)
    while q != m:
        p = q - one
        for i in range(n - 1, -1, -1):
            hi = (x[:, i] & q) != 0
            x[hi, 0] ^= p
            t2 = (x[:, 0] ^ x[:, i]) & p
            t2[hi] = 0
            x[:, 0] ^= t2
            x[:, i] ^= t2
        q <<= one
    return x


def hilbert_key_from_grid(grid: np.ndarray, bits: int) -> np.ndarray:
    """Pack grid coordinates into scalar Hilbert keys (``uint64``).

    The transpose words are interleaved bitwise, with word 0 carrying
    the most significant bit of each 3-bit group, matching Skilling's
    ordering convention.
    """
    if bits < 1 or bits > MAX_DEPTH:
        raise ValueError(f"bits must be in [1, {MAX_DEPTH}], got {bits}")
    tr = axes_to_transpose(grid, bits)
    # interleave3 is LSB-aligned: bits-wide words give a 3*bits-wide key.
    return interleave3(tr[:, 0], tr[:, 1], tr[:, 2])


def grid_from_hilbert_key(keys: np.ndarray, bits: int) -> np.ndarray:
    """Unpack scalar Hilbert keys back into grid coordinates."""
    a, b, c = deinterleave3(np.asarray(keys, dtype=np.uint64))
    tr = np.stack([a, b, c], axis=-1)
    return transpose_to_axes(tr, bits)


def hilbert_key(points: np.ndarray, lo, hi, bits: int = 16) -> np.ndarray:
    """Compute scalar Hilbert keys for points in the domain ``[lo, hi]^3``."""
    grid = quantize(points, lo, hi, bits)
    return hilbert_key_from_grid(grid, bits)


def hilbert_order(points: np.ndarray, lo=None, hi=None, bits: int = 16) -> np.ndarray:
    """Return the permutation that sorts ``points`` into Peano-Hilbert order.

    If ``lo``/``hi`` are omitted the bounding box of the points is used.
    This is the proximity-preserving ordering used by the parallel
    treecode formulation.
    """
    points = np.asarray(points, dtype=np.float64)
    if lo is None:
        lo = points.min(axis=0)
    if hi is None:
        hi = points.max(axis=0)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    # Guard degenerate (planar / collinear) data: give flat dimensions
    # a tiny positive extent so quantize() accepts the box.
    extent = hi - lo
    flat = extent <= 0
    if np.any(flat):
        pad = max(1e-12, float(extent.max()) * 1e-12) if extent.max() > 0 else 1.0
        hi = hi + flat * pad
    keys = hilbert_key(points, lo, hi, bits)
    return np.argsort(keys, kind="stable")
