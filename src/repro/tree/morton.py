"""3-D Morton (Z-order) keys.

Morton keys interleave the bits of quantized x/y/z coordinates so that
sorting particles by key groups them into the leaves of an octree: the
top ``3*d`` bits of a key identify the octree node that contains the
point at depth ``d``.  The adaptive octree in :mod:`repro.tree.octree`
is built directly on top of a Morton sort, which makes every tree node a
contiguous slice of the particle arrays.

All routines are vectorized over NumPy arrays and operate on ``uint64``
keys.  With the default ``MAX_DEPTH = 20`` bits per dimension the key
occupies 60 bits, leaving headroom in a ``uint64``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "MAX_DEPTH",
    "quantize",
    "dequantize",
    "interleave3",
    "deinterleave3",
    "morton_key",
    "morton_decode",
    "octant_at_depth",
    "key_range_of_node",
]

#: Maximum supported octree depth (bits per dimension).
MAX_DEPTH = 20

# Magic numbers that spread the low 21 bits of an integer so that two
# zero bits separate each original bit ("bit smearing"), the standard
# constant-time alternative to a per-bit loop.
_MASKS = (
    np.uint64(0x1FFFFF),
    np.uint64(0x1F00000000FFFF),
    np.uint64(0x1F0000FF0000FF),
    np.uint64(0x100F00F00F00F00F),
    np.uint64(0x10C30C30C30C30C3),
    np.uint64(0x1249249249249249),
)


def quantize(points: np.ndarray, lo: np.ndarray, hi: np.ndarray, depth: int = MAX_DEPTH) -> np.ndarray:
    """Map points in the box ``[lo, hi]^3`` to integer grid coordinates.

    Parameters
    ----------
    points:
        ``(n, 3)`` float array.
    lo, hi:
        Bounds of the (cubic or rectangular) domain.  Points are clamped
        into the box, so callers may pass the exact bounding box of the
        data without worrying about round-off at the upper face.
    depth:
        Number of bits per dimension; the grid has ``2**depth`` cells per
        side.

    Returns
    -------
    ``(n, 3)`` ``uint64`` array of grid coordinates in ``[0, 2**depth)``.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (n, 3), got {points.shape}")
    if depth < 1 or depth > MAX_DEPTH:
        raise ValueError(f"depth must be in [1, {MAX_DEPTH}], got {depth}")
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    extent = hi - lo
    if np.any(extent <= 0):
        raise ValueError("domain must have positive extent in every dimension")
    ncells = 1 << depth
    scaled = (points - lo) / extent * ncells
    grid = np.floor(scaled).astype(np.int64)
    np.clip(grid, 0, ncells - 1, out=grid)
    return grid.astype(np.uint64)


def dequantize(grid: np.ndarray, lo: np.ndarray, hi: np.ndarray, depth: int = MAX_DEPTH) -> np.ndarray:
    """Map integer grid coordinates back to cell-center points (inverse of :func:`quantize` up to cell size)."""
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    ncells = 1 << depth
    return lo + (np.asarray(grid, dtype=np.float64) + 0.5) / ncells * (hi - lo)


def _spread(v: np.ndarray) -> np.ndarray:
    """Insert two zero bits between each of the low 21 bits of ``v``."""
    v = v & _MASKS[0]
    v = (v | (v << np.uint64(32))) & _MASKS[1]
    v = (v | (v << np.uint64(16))) & _MASKS[2]
    v = (v | (v << np.uint64(8))) & _MASKS[3]
    v = (v | (v << np.uint64(4))) & _MASKS[4]
    v = (v | (v << np.uint64(2))) & _MASKS[5]
    return v


def _compact(v: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_spread`: gather every third bit into the low bits."""
    v = v & _MASKS[5]
    v = (v | (v >> np.uint64(2))) & _MASKS[4]
    v = (v | (v >> np.uint64(4))) & _MASKS[3]
    v = (v | (v >> np.uint64(8))) & _MASKS[2]
    v = (v | (v >> np.uint64(16))) & _MASKS[1]
    v = (v | (v >> np.uint64(32))) & _MASKS[0]
    return v


def interleave3(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Interleave three integer coordinate arrays into Morton keys.

    Bit layout (most significant first): ``x_19 y_19 z_19 x_18 ...`` so
    that lexicographic key order equals depth-first octree order with
    octant digit ``4*x_bit + 2*y_bit + 1*z_bit``.
    """
    x = np.asarray(x, dtype=np.uint64)
    y = np.asarray(y, dtype=np.uint64)
    z = np.asarray(z, dtype=np.uint64)
    return (_spread(x) << np.uint64(2)) | (_spread(y) << np.uint64(1)) | _spread(z)


def deinterleave3(key: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover the three coordinate arrays from Morton keys."""
    key = np.asarray(key, dtype=np.uint64)
    return (
        _compact(key >> np.uint64(2)),
        _compact(key >> np.uint64(1)),
        _compact(key),
    )


def morton_key(points: np.ndarray, lo, hi, depth: int = MAX_DEPTH) -> np.ndarray:
    """Compute Morton keys for points in the domain ``[lo, hi]^3``."""
    grid = quantize(points, lo, hi, depth)
    # Left-align a shallower quantization so keys at any depth share a
    # common prefix structure at MAX_DEPTH granularity.
    if depth < MAX_DEPTH:
        grid = grid << np.uint64(MAX_DEPTH - depth)
    return interleave3(grid[:, 0], grid[:, 1], grid[:, 2])


def morton_decode(keys: np.ndarray, lo, hi, depth: int = MAX_DEPTH) -> np.ndarray:
    """Decode Morton keys back into cell-center coordinates."""
    x, y, z = deinterleave3(keys)
    if depth < MAX_DEPTH:
        shift = np.uint64(MAX_DEPTH - depth)
        x, y, z = x >> shift, y >> shift, z >> shift
    grid = np.stack([x, y, z], axis=-1)
    return dequantize(grid, lo, hi, depth)


def octant_at_depth(keys: np.ndarray, depth: int) -> np.ndarray:
    """Extract the 3-bit octant digit used at tree level ``depth``.

    Level 1 corresponds to the root's children (the most significant
    digit of the key).
    """
    if depth < 1 or depth > MAX_DEPTH:
        raise ValueError(f"depth must be in [1, {MAX_DEPTH}], got {depth}")
    shift = np.uint64(3 * (MAX_DEPTH - depth))
    return ((np.asarray(keys, dtype=np.uint64) >> shift) & np.uint64(7)).astype(np.int64)


def key_range_of_node(prefix: int, depth: int) -> tuple[int, int]:
    """Half-open Morton key range ``[start, end)`` of the node whose
    path from the root is encoded by ``prefix`` (3 bits per level,
    ``depth`` levels)."""
    if depth < 0 or depth > MAX_DEPTH:
        raise ValueError(f"depth must be in [0, {MAX_DEPTH}], got {depth}")
    width = 3 * (MAX_DEPTH - depth)
    start = prefix << width
    end = (prefix + 1) << width
    return start, end
