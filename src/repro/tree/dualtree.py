r"""Dual-tree traversal: box-box interaction pairs under a two-sided MAC.

The single-tree traversal of :class:`~repro.core.treecode.Treecode`
tests each *target point* against cluster spheres — the classic
Barnes-Hut acceptance ``a <= alpha r`` of the paper.  For
cluster-cluster (M2L) evaluation both ends of an interaction are
extended bodies, so the acceptance criterion generalizes to the
*box MAC*

.. math::

    \frac{a_{\mathrm{src}} + a_{\mathrm{tgt}}}{r} \le \alpha,

where ``a_src``/``a_tgt`` are the exact enclosing radii about the two
expansion centers and ``r`` the distance between the centers.  This is
the well-separated-pair criterion of Engblom (*On well-separated sets
and fast multipole methods*, arXiv:1006.2269) specialized to spheres;
for ``alpha < 1`` it guarantees ``r > a_src + a_tgt``, so the combined
M2L + L2L + L2P pipeline truncated at degree ``p`` obeys the Theorem-1
style bound

.. math::

    |\Phi - \Phi_p| \le
    \frac{A}{r - a_{\mathrm{src}} - a_{\mathrm{tgt}}}
    \left(\frac{a_{\mathrm{src}} + a_{\mathrm{tgt}}}{r}\right)^{p+1}

per accepted pair (``A`` the absolute source charge), which reduces to
the paper's Theorem-2 form ``A alpha^{p+1} / (r (1 - alpha))``.

The walk starts from the (root, root) pair and recursively splits the
larger-radius side of every pair that fails the MAC; a failing pair of
two leaves becomes a near (direct) leaf pair.  The refinement loop is
vectorized: each round tests every frontier pair at once and expands
the failing ones with one ``repeat``/``arange`` pass, so the traversal
costs a few milliseconds per ten thousand boxes.  Emission order is
deterministic (frontier order), which the compiled cluster plan relies
on for reproducible accumulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .octree import Octree

__all__ = ["BoxPairs", "dual_traverse", "box_mac"]


@dataclass
class BoxPairs:
    """Interaction pairs produced by :func:`dual_traverse`.

    ``far_src[i]``/``far_tgt[i]`` is an accepted source/target box pair
    (M2L candidates); ``near_src``/``near_tgt`` are leaf pairs that
    must interact directly (including each leaf's self pair).
    ``far_r[i]`` is the center distance of far pair ``i`` — the MAC
    test computes it anyway, and carrying it out lets consumers (the
    variable-order plan compiler's per-pair Theorem-1 bound factors)
    avoid a second distance pass over every pair.
    """

    far_src: np.ndarray
    far_tgt: np.ndarray
    near_src: np.ndarray
    near_tgt: np.ndarray
    far_r: np.ndarray | None = None

    @property
    def n_far(self) -> int:
        return int(self.far_src.size)

    @property
    def n_near(self) -> int:
        return int(self.near_src.size)


def _box_mac_r(
    tree: Octree, src: np.ndarray, tgt: np.ndarray, alpha: float
) -> tuple[np.ndarray, np.ndarray]:
    """Box MAC acceptance mask plus the center distances it tested."""
    d = tree.center_exp[src] - tree.center_exp[tgt]
    r = np.sqrt(np.einsum("ij,ij->i", d, d))
    acc = (r > 0.0) & (tree.radius[src] + tree.radius[tgt] <= alpha * r)
    return acc, r


def box_mac(
    tree: Octree, src: np.ndarray, tgt: np.ndarray, alpha: float
) -> np.ndarray:
    """Vectorized box MAC: accept pair ``(src, tgt)`` iff
    ``a_src + a_tgt <= alpha * |c_src - c_tgt|`` (strictly separated)."""
    return _box_mac_r(tree, src, tgt, alpha)[0]


def _expand(tree: Octree, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Children of each node, flattened, with a repeat map back to the
    originating pair row."""
    counts = tree.n_children[nodes]
    owner = np.repeat(np.arange(nodes.size), counts)
    offsets = np.arange(int(counts.sum())) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    children = tree.first_child[nodes][owner] + offsets
    return children.astype(np.int64), owner


def dual_traverse(tree: Octree, alpha: float) -> BoxPairs:
    """Decompose all pairwise interactions into box MAC far pairs plus
    near leaf pairs.

    Every (source particle, target particle) pair is covered by exactly
    one emitted pair — the partition property that makes the
    cluster-cluster plan equal the direct sum up to the truncation
    error of the accepted pairs.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1) for the box MAC, got {alpha}")
    far_s: list[np.ndarray] = []
    far_t: list[np.ndarray] = []
    far_r: list[np.ndarray] = []
    near_s: list[np.ndarray] = []
    near_t: list[np.ndarray] = []
    src = np.zeros(1, dtype=np.int64)
    tgt = np.zeros(1, dtype=np.int64)
    while src.size:
        acc, r = _box_mac_r(tree, src, tgt, alpha)
        if acc.any():
            far_s.append(src[acc])
            far_t.append(tgt[acc])
            far_r.append(r[acc])
            src, tgt = src[~acc], tgt[~acc]
        if not src.size:
            break
        s_leaf = tree.n_children[src] == 0
        t_leaf = tree.n_children[tgt] == 0
        both = s_leaf & t_leaf
        if both.any():
            near_s.append(src[both])
            near_t.append(tgt[both])
            src, tgt = src[~both], tgt[~both]
            s_leaf, t_leaf = s_leaf[~both], t_leaf[~both]
        if not src.size:
            break
        # split the larger-radius side (the only splittable one if the
        # other is a leaf)
        split_src = ~s_leaf & (t_leaf | (tree.radius[src] >= tree.radius[tgt]))
        ns_list = []
        nt_list = []
        if split_src.any():
            children, owner = _expand(tree, src[split_src])
            ns_list.append(children)
            nt_list.append(tgt[split_src][owner])
        split_tgt = ~split_src
        if split_tgt.any():
            children, owner = _expand(tree, tgt[split_tgt])
            ns_list.append(src[split_tgt][owner])
            nt_list.append(children)
        src = np.concatenate(ns_list)
        tgt = np.concatenate(nt_list)

    def _cat(parts: list[np.ndarray]) -> np.ndarray:
        return (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )

    return BoxPairs(
        far_src=_cat(far_s),
        far_tgt=_cat(far_t),
        near_src=_cat(near_s),
        near_tgt=_cat(near_t),
        far_r=(
            np.concatenate(far_r) if far_r else np.empty(0, dtype=np.float64)
        ),
    )
